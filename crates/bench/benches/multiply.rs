//! Criterion benches for multiplication (E5–E9): the four millicode
//! generations and constant-multiply compilation, with the Figure 5 cycle
//! table printed alongside the wall-clock measurements.

use bench::{cycle_band, cycles2};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use millicode::mulvar;
use mulconst::{compile_mul_const, CodegenConfig};
use operand_dist::FIGURE5_CLASSES;

fn bench_generations(c: &mut Criterion) {
    let routines = [
        ("naive", mulvar::naive().unwrap()),
        ("early_exit", mulvar::early_exit().unwrap()),
        ("nibble", mulvar::nibble().unwrap()),
        ("swap", mulvar::swap().unwrap()),
        ("switched", mulvar::switched(true).unwrap()),
    ];

    // Print the cycle comparison (the paper's E5–E8 numbers).
    println!("multiply generations, 4711 * 13:");
    for (name, p) in &routines {
        println!("  {name:<12} {:>4} cycles", cycles2(p, 4711, 13));
    }

    let mut group = c.benchmark_group("mulvar_simulation");
    for (name, p) in &routines {
        group.bench_function(*name, |b| {
            b.iter(|| cycles2(black_box(p), black_box(4711), black_box(13)))
        });
    }
    group.finish();
}

fn bench_figure5(_c: &mut Criterion) {
    // Regenerate the Figure 5 table (cycles per operand class).
    let p = mulvar::switched(true).unwrap();
    println!("Figure 5 (best/avg/worst cycles by min-operand class):");
    for &(lo, hi) in &FIGURE5_CLASSES {
        let band = cycle_band(&p, lo, hi, 60_000.max(hi + 1), 64);
        println!("  {lo:>5}-{hi:<6} {band}");
    }
}

fn bench_const_compile(c: &mut Criterion) {
    let cfg = CodegenConfig::default();
    let mut group = c.benchmark_group("mul_const_codegen");
    group.bench_function("n=10", |b| {
        b.iter(|| compile_mul_const(black_box(10), &cfg).unwrap())
    });
    group.bench_function("n=1980", |b| {
        b.iter(|| compile_mul_const(black_box(1980), &cfg).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_generations,
    bench_figure5,
    bench_const_compile
);
criterion_main!(benches);
