//! Criterion benches for division (E10–E12, A2): magic derivation,
//! constant-divide codegen, and the millicode routines, with the §7 cycle
//! bands printed alongside.

use bench::cycles2;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use divconst::{compile_div_const, DivCodegenConfig, Magic, Signedness};
use millicode::divvar;

fn bench_magic(c: &mut Criterion) {
    let mut group = c.benchmark_group("magic_derivation");
    group.bench_function("figure6_all", |b| b.iter(Magic::figure6));
    group.bench_function("y=641", |b| b.iter(|| Magic::minimal(black_box(641))));
    group.finish();
}

fn bench_codegen(c: &mut Criterion) {
    let cfg = DivCodegenConfig::default();
    let mut group = c.benchmark_group("div_const_codegen");
    for y in [3u32, 9, 11, 19] {
        group.bench_function(format!("y={y}"), |b| {
            b.iter(|| compile_div_const(black_box(y), Signedness::Unsigned, &cfg).unwrap())
        });
    }
    group.finish();

    // Print the §7 constant-divisor band.
    print!("constant divisors 2..20, cycles:");
    for y in 2..20u32 {
        let p = compile_div_const(y, Signedness::Unsigned, &cfg).unwrap();
        let (_, stats) = pa_sim::run_fn(
            &p,
            &[(cfg.source, 1_000_000_007)],
            &pa_sim::ExecConfig::default(),
        );
        print!(" {}", stats.cycles);
    }
    println!("  (paper: 1 to 27)");
}

fn bench_routines(c: &mut Criterion) {
    let udiv = divvar::udiv().unwrap();
    let restoring = divvar::restoring_udiv().unwrap();
    let dispatch = divvar::small_dispatch(20).unwrap();

    println!(
        "general divide 1000000007 / 97: {} cycles (paper ≈80)",
        cycles2(&udiv, 1_000_000_007, 97)
    );
    println!(
        "restoring baseline:             {} cycles",
        cycles2(&restoring, 1_000_000_007, 97)
    );
    println!(
        "dispatch / 7:                   {} cycles (paper 10..36)",
        cycles2(&dispatch, 1_000_000_007, 7)
    );

    let mut group = c.benchmark_group("divvar_simulation");
    group.bench_function("udiv", |b| {
        b.iter(|| cycles2(black_box(&udiv), black_box(1_000_000_007), black_box(97)))
    });
    group.bench_function("dispatch_small", |b| {
        b.iter(|| cycles2(black_box(&dispatch), black_box(1_000_000_007), black_box(7)))
    });
    group.bench_function("restoring", |b| {
        b.iter(|| {
            cycles2(
                black_box(&restoring),
                black_box(1_000_000_007),
                black_box(97),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_magic, bench_codegen, bench_routines);
criterion_main!(benches);
