//! Criterion bench for the §8 distribution-weighted summaries (E13) and the
//! A1 overflow-circuit ablation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hppa_muldiv::analysis;
use pa_sim::{cheap_circuit_overflow, precise_overflow};

fn bench_summaries(c: &mut Criterion) {
    // Print the headline numbers once.
    let mul = analysis::multiply_summary(13, 2000);
    let div = analysis::divide_summary(13, 2000);
    println!(
        "§8 summary: multiply {:.1} cycles avg (paper ≈6), divide {:.1} (paper ≈40)",
        mul.average, div.average
    );

    let mut group = c.benchmark_group("summary");
    group.sample_size(10);
    group.bench_function("multiply_mix_200", |b| {
        b.iter(|| analysis::multiply_summary(black_box(13), 200))
    });
    group.bench_function("divide_mix_200", |b| {
        b.iter(|| analysis::divide_summary(black_box(13), 200))
    });
    group.finish();
}

fn bench_overflow_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("overflow_detectors");
    group.bench_function("cheap_circuit", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for a in (-2000i32..2000).step_by(7) {
                hits += u32::from(cheap_circuit_overflow(black_box(a * 1_000_001), 3, 77));
            }
            hits
        })
    });
    group.bench_function("precise_35bit", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for a in (-2000i32..2000).step_by(7) {
                hits += u32::from(precise_overflow(black_box(a * 1_000_001), 3, 77));
            }
            hits
        })
    });
    group.finish();
}

criterion_group!(benches, bench_summaries, bench_overflow_models);
criterion_main!(benches);
