//! Regenerates every table and figure of the paper, printing paper-claimed
//! values next to measured ones. `EXPERIMENTS.md` records a snapshot of this
//! output.
//!
//! ```sh
//! cargo run --release -p bench --bin tables          # all except deep Figure 1
//! cargo run --release -p bench --bin tables -- --full  # rows 5-6 of Figure 1 too
//! cargo run --release -p bench --bin tables -- fig1 fig6  # selected sections
//! ```

use addchain::{find_chain, Frontier, FrontierConfig, SearchLimits};
use bench::{cycle_band, cycles2, section, PreparedBench};
use divconst::{DivCodegenConfig, Magic, Signedness};
use hppa_muldiv::{analysis, Compiler};
use millicode::{divvar, mulvar};
use operand_dist::{Figure5Mix, LogUniform, FIGURE5_CLASSES, FIGURE5_WEIGHTS};
use pa_sim::{cheap_circuit_overflow, precise_overflow};
use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let selected: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let want = |name: &str| selected.is_empty() || selected.iter().any(|s| *s == name);

    if want("impact") {
        impact();
    }
    if want("fig1") {
        fig1(full);
    }
    if want("reg_use") {
        reg_use();
    }
    if want("monotonic") {
        monotonic();
    }
    if want("rulegap") {
        rulegap(full);
    }
    if want("fig2") {
        fig2();
    }
    if want("early_exit") {
        early_exit();
    }
    if want("fig3") {
        fig3();
    }
    if want("swap") {
        swap();
    }
    if want("fig5") {
        fig5();
    }
    if want("fig6") {
        fig6();
    }
    if want("fig7") {
        fig7();
    }
    if want("div_perf") {
        div_perf();
    }
    if want("summary") {
        summary();
    }
    if want("const_len") {
        const_len();
    }
    if want("ovf_ablation") {
        ovf_ablation();
    }
    if want("isa_ablation") {
        isa_ablation();
    }
    if want("dispatch_ablation") {
        dispatch_ablation();
    }
    if want("telemetry") {
        telemetry_attribution();
    }
}

/// E15 — where the switched multiply's cycles go (per-label attribution)
/// and which strategies fire under the §8 analysis mix.
fn telemetry_attribution() {
    section(
        "E15 / telemetry",
        "cycle attribution and strategy histogram",
    );
    let p = mulvar::switched(true).unwrap();
    let mix = Figure5Mix::new();
    let pairs = mix.pairs(21, 2000);
    let mut stats = pa_sim::SimStats::default();
    let mut total = 0u64;
    for &(x, y) in &pairs {
        total += bench::cycles2_stats(&p, x as u32, y as u32, &mut stats);
    }
    println!(
        "switched multiply over the Figure 5 mix: {} pairs, {} cycles",
        pairs.len(),
        total
    );
    bench::print_stats(&stats);
    let ((), events) = telemetry::collect(|| {
        let _ = analysis::multiply_summary(13, 500);
        let _ = analysis::divide_summary(13, 500);
    });
    println!("strategy histogram under the §8 analysis mix (500 ops each):");
    for (key, count) in telemetry::strategy_histogram(&events) {
        println!("  {key:<24} {count}");
    }
}

/// A3 — how far to take the §7 small-divisor dispatch: static size vs
/// dynamic cycles as the `BLR` table grows.
fn dispatch_ablation() {
    section(
        "A3 / §7 ablation",
        "small-divisor dispatch: table size vs cycles (the paper stops at 20)",
    );
    use rand::Rng as _;
    let mut rng = StdRng::seed_from_u64(33);
    // A divisor stream matching the §7 scope: mostly small, some large.
    let divisors: Vec<u32> = (0..2000)
        .map(|_| {
            if rng.gen_bool(0.8) {
                rng.gen_range(1..20)
            } else {
                rng.gen_range(20..10_000)
            }
        })
        .collect();
    println!("{:>6} {:>8} {:>10}", "limit", "static", "avg cycles");
    for limit in [2u32, 4, 8, 16, 20, 32] {
        let p = divvar::small_dispatch(limit).unwrap();
        let mut bench = PreparedBench::new(&p);
        let total: u64 = divisors
            .iter()
            .map(|&y| bench.cycles(1_000_000_007, y))
            .sum();
        println!(
            "{:>6} {:>8} {:>10.1}",
            limit,
            p.len(),
            total as f64 / divisors.len() as f64
        );
    }
    println!("(bigger tables trade millicode bytes for average cycles; the knee");
    println!(" sits right around the paper's choice of 20)");
}

/// E0 — §2's framing: whole-program impact under the Gibson mix.
fn impact() {
    use operand_dist::InstructionMix;
    section(
        "E0 / §2",
        "whole-program impact of multiply/divide cost (Gibson mix)",
    );
    let mul = analysis::multiply_summary(13, 2000);
    let div = analysis::divide_summary(13, 2000);
    println!(
        "{:<34} {:>10} {:>12}",
        "implementation (mul, div cycles)", "CPI@Gibson", "CPI@heavy"
    );
    let rows: [(&str, f64, f64); 4] = [
        ("all-hardware single cycle", 1.0, 1.0),
        ("Booth step + Jouppi step (20, 38)", 20.0, 38.0),
        ("this paper (measured)", mul.average, div.average),
        ("naive software (168, 227)", 168.0, 227.0),
    ];
    for (name, m, d) in rows {
        println!(
            "{:<34} {:>10.3} {:>12.3}",
            name,
            InstructionMix::gibson().cpi(m, d),
            InstructionMix::heavy().cpi(m, d)
        );
    }
    println!(
        "(the paper's point: the software scheme costs ~{:.0}% CPI at Gibson \
         frequencies — no hardware justified; a naive implementation would \
         cost {:.0}%)",
        100.0 * (InstructionMix::gibson().cpi(mul.average, div.average) - 1.0),
        100.0 * (InstructionMix::gibson().cpi(168.0, 227.0) - 1.0)
    );
}

/// E1 — Figure 1: least n with l(n) = r.
fn fig1(full: bool) {
    section("E1 / Figure 1", "least values of n such that l(n) = r");
    let paper: [&[u64]; 6] = [
        &[2, 3, 4, 5, 8, 9, 16, 32, 64, 128, 256, 512],
        &[6, 7, 10, 11, 12, 13, 15, 17, 18, 19, 20, 21],
        &[14, 22, 23, 26, 28, 29, 30, 35, 38, 39, 42],
        &[58, 78, 86, 92, 106, 110, 114, 115, 116],
        &[466, 474, 618, 622, 678, 683, 686, 687],
        &[3802, 4838, 5326, 5519, 5534, 5550],
    ];
    let max_len = if full { 6 } else { 4 };
    let config = if full {
        FrontierConfig::figure1(std::thread::available_parallelism().map_or(4, |n| n.get()))
    } else {
        FrontierConfig {
            max_len,
            target_max: 600,
            value_cap: 1 << 14,
            max_shift: 14,
            threads: 4,
        }
    };
    println!(
        "(exhaustive sweep: max_len={}, value_cap=2^{}, shifts ≤ {})",
        config.max_len,
        config.value_cap.ilog2(),
        config.max_shift
    );
    let start = std::time::Instant::now();
    let f = Frontier::compute(&config);
    println!("computed in {:.1?}", start.elapsed());
    for r in 1..=config.max_len {
        let row = f.row(r);
        let take = paper[r as usize - 1].len().min(row.len());
        let ok = row[..take] == paper[r as usize - 1][..take];
        println!(
            "r={r}  measured: {:?}{}",
            &row[..take],
            if ok {
                "  [matches Figure 1]"
            } else {
                "  [MISMATCH]"
            }
        );
        println!("      paper:    {:?}", paper[r as usize - 1]);
    }
    if !full {
        println!("(rows 5-6 need the deep sweep: re-run with --full)");
    }
    // §5's conjecture about c(r), the first n with l(n) = r: "It is certain
    // that the behavior … is at least exponential. The first 6 entries
    // suggest that it might be super exponential."
    let c: [f64; 6] = [2.0, 6.0, 14.0, 58.0, 466.0, 3802.0];
    print!("c(r) growth ratios:");
    for w in c.windows(2) {
        print!(" {:.2}", w[1] / w[0]);
    }
    println!("  — increasing, consistent with the super-exponential conjecture");
}

/// E2 — §5 Register Use: temp-needing constants below 100.
fn reg_use() {
    section(
        "E2 / §5 Register Use",
        "constants below 100 whose minimal chains all need a temp",
    );
    let tf = addchain::temp_free_lengths(100, 1 << 13, 13, 8);
    let limits = SearchLimits {
        max_len: 6,
        value_cap: 1 << 13,
        max_shift: 13,
        node_budget: 50_000_000,
    };
    let need: Vec<u64> = (1..100u64)
        .filter(|&n| tf[n as usize].unwrap() > addchain::optimal_len(n, &limits).unwrap())
        .collect();
    println!("measured: {need:?}");
    println!("paper:    [59, 87, 94]");
}

/// E3 — §5 Overflow: the monotonic (overflow-detecting) chain penalty.
fn monotonic() {
    section(
        "E3 / §5 Overflow",
        "monotonic chain penalty for overflow detection",
    );
    println!(
        "l(15): unrestricted 2, monotonic {} (paper: 2)",
        addchain::monotonic::optimal_len(15, 6).unwrap()
    );
    println!(
        "l(31): unrestricted 2, monotonic {} (paper: 3)",
        addchain::monotonic::optimal_len(31, 6).unwrap()
    );
    let limits = SearchLimits {
        max_len: 6,
        value_cap: 1 << 12,
        max_shift: 12,
        node_budget: 20_000_000,
    };
    let mut penalised = 0;
    let mut total_penalty = 0u32;
    const N: u64 = 256;
    for n in 2..=N {
        let free = addchain::optimal_len(n, &limits).unwrap();
        let mono = addchain::monotonic::optimal_len(n, 8).unwrap();
        if mono > free {
            penalised += 1;
            total_penalty += mono - free;
        }
    }
    println!(
        "n ≤ {N}: {penalised} constants pay a penalty, {total_penalty} extra steps total \
         (paper: \"the penalty is bounded\")"
    );
}

/// E4 — rule-based vs exhaustive chain lengths.
fn rulegap(full: bool) {
    section("E4 / §5", "rule-based generator vs exhaustive search");
    let max = if full { 10_000u64 } else { 2_000 };
    let limits = SearchLimits {
        max_len: 7,
        value_cap: 1 << 14,
        max_shift: 14,
        node_budget: 100_000_000,
    };
    let mut non_minimal = 0u32;
    let mut hybrid_non_minimal = 0u32;
    let mut worst_gap = 0usize;
    for n in 2..max {
        let ruled = find_chain(n as i64).len();
        let hybrid = addchain::find_chain_minimal(n as i64, &limits).len();
        let exact = addchain::optimal_len(n, &limits).map_or(ruled, |l| l as usize);
        if ruled > exact {
            non_minimal += 1;
            worst_gap = worst_gap.max(ruled - exact);
        }
        if hybrid > exact {
            hybrid_non_minimal += 1;
        }
    }
    println!(
        "n < {max}: rule-based non-minimal for {non_minimal} values (worst gap {worst_gap} steps)"
    );
    println!(
        "          hybrid (rules + budgeted exhaustive, the paper's \"remembered \
         exceptions\"): {hybrid_non_minimal}"
    );
    println!("paper: \"for all numbers less than 10000 … minimal length in all but 12 cases\"");
}

/// E5 — Figure 2: the naive multiply's dynamic path.
fn fig2() {
    section("E5 / Figure 2", "bit-serial multiply: dynamic path");
    let p = mulvar::naive().unwrap();
    let c = cycles2(&p, 12345, 678);
    println!(
        "measured: {c} single-cycle instructions (static size {})",
        p.len()
    );
    println!("paper:    167");
}

/// E6 — the early-exit optimisation.
fn early_exit() {
    section("E6 / §6", "early exit: worst case and log-uniform average");
    let p = mulvar::early_exit().unwrap();
    let mut bench = PreparedBench::new(&p);
    let worst = bench.cycles(i32::MIN as u32, 1);
    let dist = LogUniform::new(31);
    let mut rng = StdRng::seed_from_u64(6);
    let mut total = 0u64;
    const N: u64 = 4000;
    for _ in 0..N {
        total += bench.cycles(dist.sample(&mut rng), 12345);
    }
    println!(
        "measured: worst {worst}, log-uniform average {:.0}",
        total as f64 / N as f64
    );
    println!("paper:    worst 192, average 103");
}

/// E7 — Figure 3: the nibble loop.
fn fig3() {
    section("E7 / Figure 3", "four bits per iteration");
    let p = mulvar::nibble().unwrap();
    let mut bench = PreparedBench::new(&p);
    let worst = bench.cycles(i32::MAX as u32, 1);
    let dist = LogUniform::new(31);
    let mut rng = StdRng::seed_from_u64(7);
    let mut total = 0u64;
    const N: u64 = 4000;
    for _ in 0..N {
        total += bench.cycles(dist.sample(&mut rng), 12345);
    }
    println!(
        "measured: worst {worst}, log-uniform average {:.0}",
        total as f64 / N as f64
    );
    println!("paper:    worst 107, average 55 (13-instruction loop body)");
}

/// E8 — the operand swap.
fn swap() {
    section(
        "E8 / §6 Observation",
        "operand swap bounds the loop at four iterations",
    );
    let p = mulvar::swap().unwrap();
    let mut bench = PreparedBench::new(&p);
    // Non-overflowing products: min operand ≤ 16 bits.
    let worst = bench.cycles(46340, 46340);
    let mix = Figure5Mix::new();
    let mut total = 0u64;
    let pairs = mix.pairs(8, 4000);
    for &(x, y) in &pairs {
        total += bench.cycles(x as u32, y as u32);
    }
    println!(
        "measured: worst {worst}, Figure-5-mix average {:.0}",
        total as f64 / pairs.len() as f64
    );
    println!("paper:    worst 59, average 33");
}

/// E9 — Figure 5: the final switched algorithm per operand class.
fn fig5() {
    section(
        "E9 / Figure 5",
        "final algorithm: cycles by min(|x|,|y|) class",
    );
    let p = mulvar::switched(true).unwrap();
    let paper = [
        (10, 15, 23, 60),
        (20, 24, 34, 20),
        (28, 34, 45, 10),
        (36, 44, 56, 10),
    ];
    println!(
        "{:<14} {:>4} {:>6} {:>5}   paper(best avg worst)  weight",
        "min class", "best", "avg", "worst"
    );
    for (i, &(lo, hi)) in FIGURE5_CLASSES.iter().enumerate() {
        let big = 60_000u32.max(hi + 1);
        let band = cycle_band(&p, lo, hi, big, 64);
        let (pb, pa, pw, pct) = paper[i];
        println!(
            "{:<14} {band}   {:>5} {:>3} {:>5}          {:>3}%",
            format!("{lo}-{hi}"),
            pb,
            pa,
            pw,
            pct
        );
        let _ = FIGURE5_WEIGHTS;
    }
    // The weighted average over the paper's mix.
    let mut bench = PreparedBench::new(&p);
    let mix = Figure5Mix::new();
    let pairs = mix.pairs(9, 6000);
    let total: u64 = pairs
        .iter()
        .map(|&(x, y)| bench.cycles(x as u32, y as u32))
        .sum();
    println!(
        "weighted average: {:.1} cycles (paper: \"less than 20\")",
        total as f64 / pairs.len() as f64
    );
}

/// E10 — Figure 6: the derived-method parameters.
fn fig6() {
    section("E10 / Figure 6", "magic numbers for small odd divisors");
    println!(
        "{:>3} {:>6} {:>3} {:>10} {:>12}",
        "y", "z", "r", "a", "(K+1)y"
    );
    for m in Magic::figure6() {
        println!(
            "{:>3} {:>6} {:>3} {:>10X} {:>12X}",
            m.y(),
            format!("2^{}", m.s()),
            m.r(),
            m.a(),
            m.reach()
        );
    }
    println!("(matches Figure 6 exactly; verified in tests/paper_regressions.rs)");
}

/// E11 — Figure 7: divide by 3.
fn fig7() {
    section("E11 / Figure 7", "the 17-instruction divide by 3");
    let c = Compiler::new();
    let udiv3 = c.udiv_const(3).unwrap();
    println!("{}", udiv3.program());
    println!("unsigned: {} cycles (paper: 17)", udiv3.cycles());
    let sdiv3 = c.sdiv_const(3).unwrap();
    println!(
        "signed:   {} cycles positive, {} negative (paper: 17 / 19)",
        sdiv3.cycles_for(100),
        sdiv3.cycles_for(-100i32 as u32)
    );
}

/// E12 — §7 Performance: constant, small-variable and general division.
fn div_perf() {
    section("E12 / §7 Performance", "division cycle bands");
    let c = Compiler::new();
    let mut lo = u64::MAX;
    let mut hi = 0;
    print!("constant divisors 2..20 cycles:");
    for y in 2..20u32 {
        let cycles = c.udiv_const(y).unwrap().cycles_for(1_000_000_007);
        print!(" {cycles}");
        lo = lo.min(cycles);
        hi = hi.max(cycles);
    }
    println!();
    println!("  range {lo}..{hi} (paper: 1 to 27; y=1 is a single copy)");

    let dispatch = divvar::small_dispatch(20).unwrap();
    let mut bench = PreparedBench::new(&dispatch);
    let mut dlo = u64::MAX;
    let mut dhi = 0;
    for y in 1..20u32 {
        for x in [1u32, 1_000_000_007, u32::MAX] {
            let cyc = bench.cycles(x, y);
            dlo = dlo.min(cyc);
            dhi = dhi.max(cyc);
        }
    }
    println!("variable divisors < 20 via BLR dispatch: {dlo}..{dhi} (paper: 10 to 36)");

    let udiv = divvar::udiv().unwrap();
    let g = cycles2(&udiv, 1_000_000_007, 97);
    println!("general DS/ADDC routine: {g} cycles (paper: about 80)");
}

/// E13 — §8 summary averages.
fn summary() {
    section("E13 / §8 Summary", "distribution-weighted averages");
    let mul = analysis::multiply_summary(13, 4000);
    let div = analysis::divide_summary(13, 4000);
    println!(
        "multiply: {:.1} cycles average (constants {:.1}, variables {:.1})",
        mul.average, mul.constant_average, mul.variable_average
    );
    println!("  paper:  about 6 (constants ≤ 4, variables < 20)");
    println!(
        "divide:   {:.1} cycles average (constants {:.1}, variables {:.1})",
        div.average, div.constant_average, div.variable_average
    );
    println!("  paper:  about 40");
}

/// E14 — §8 bullet 1: constant multiplies in four or fewer instructions.
fn const_len() {
    section("E14 / §8", "constant-multiply instruction counts");
    let c = Compiler::new();
    let mut hist = [0u32; 10];
    for n in 1..=1024i64 {
        let len = c.mul_const(n).unwrap().len().min(9);
        hist[len] += 1;
    }
    println!("chain length histogram for n in 1..=1024:");
    for (len, count) in hist.iter().enumerate() {
        if *count > 0 {
            println!("  {len} instructions: {count}");
        }
    }
    let within4: u32 = hist[..=4].iter().sum();
    println!(
        "{:.1}% within four instructions (paper: \"generally … four or fewer\")",
        100.0 * f64::from(within4) / 1024.0
    );
    // Weighted by the operand distribution (small constants dominate):
    let mix = Figure5Mix::new();
    let mut total_len = 0u64;
    let pairs = mix.pairs(14, 4000);
    for &(x, y) in &pairs {
        let k = if x.unsigned_abs() <= y.unsigned_abs() {
            x
        } else {
            y
        };
        total_len += c.mul_const(i64::from(k)).unwrap().len() as u64;
    }
    println!(
        "distribution-weighted average: {:.2} instructions",
        total_len as f64 / pairs.len() as f64
    );
}

/// A1 — the cheap overflow circuit vs the precise detector.
fn ovf_ablation() {
    section(
        "A1 / §4 ablation",
        "cheap sign-comparison circuit vs 35-bit reference",
    );
    let mut rng = StdRng::seed_from_u64(99);
    let mut mixed_disagree = 0u64;
    let mut same_disagree = 0u64;
    const N: u64 = 200_000;
    for _ in 0..N {
        let a: i32 = rand::Rng::gen(&mut rng);
        let b: i32 = rand::Rng::gen(&mut rng);
        for sh in 1..=3u32 {
            let cheap = cheap_circuit_overflow(a, sh, b);
            let precise = precise_overflow(a, sh, b);
            if cheap != precise {
                if (a < 0) == (b < 0) {
                    same_disagree += 1;
                } else {
                    mixed_disagree += 1;
                }
            }
        }
    }
    println!("{N} random operand pairs × 3 shifts:");
    println!("  same-sign disagreements:  {same_disagree} (paper: circuit exact here)");
    println!(
        "  mixed-sign disagreements: {mixed_disagree} — all conservative false positives \
         (\"does not allow for proper overflow detection if the operands are of \
         different signs\")"
    );
}

/// A2 — the removed step hardware vs the shipped software.
fn isa_ablation() {
    section(
        "A2 / §3 ablation",
        "step-instruction hardware vs Precision software",
    );
    println!("multiply:");
    println!(
        "  Booth multiply-step machine: {} cycles, every multiply",
        baselines::booth::cost()
    );
    let p = mulvar::switched(true).unwrap();
    let mut bench = PreparedBench::new(&p);
    let mix = Figure5Mix::new();
    let pairs = mix.pairs(15, 4000);
    let avg: f64 = pairs
        .iter()
        .map(|&(x, y)| bench.cycles(x as u32, y as u32) as f64)
        .sum::<f64>()
        / pairs.len() as f64;
    println!("  Precision software switched:  {avg:.1} cycles average, no extra hardware");
    println!("divide:");
    println!(
        "  Jouppi 1-instruction step:    {} (needs HL register + V-bit on critical path)",
        baselines::divider::jouppi_cost()
    );
    println!(
        "  Precision DS+ADDC pairing:    {} (two plain register ports)",
        baselines::divider::precision_cost()
    );
    let restoring = divvar::restoring_udiv().unwrap();
    let ds = divvar::udiv().unwrap();
    println!(
        "  measured on simulator: restoring software {} cycles vs DS routine {} cycles",
        cycles2(&restoring, 1_000_000_007, 97),
        cycles2(&ds, 1_000_000_007, 97)
    );
    // Constant-divisor sanity: derived method ≪ everything.
    let div7 = Compiler::new().udiv_const(7).unwrap();
    println!(
        "  derived-method /7: {} cycles — the §7 punchline",
        div7.cycles()
    );
    let _ = DivCodegenConfig::default();
    let _ = Signedness::Unsigned;
}
