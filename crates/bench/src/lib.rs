//! Shared measurement helpers for the table generator and the Criterion
//! benches: cycle counting on the simulator, operand batches, and the
//! experiment definitions indexed in DESIGN.md.

#![forbid(unsafe_code)]

use pa_isa::{Program, Reg};
use pa_sim::{run_fn, ExecConfig, Machine, PreparedProgram, RunResult, SimStats};

/// Runs a two-operand millicode routine and returns its cycle count,
/// asserting completion.
#[must_use]
pub fn cycles2(p: &Program, a: u32, b: u32) -> u64 {
    let (_, stats) = run2(p, a, b);
    assert!(
        stats.termination.is_completed(),
        "{a}, {b}: {:?}",
        stats.termination
    );
    stats.cycles
}

/// Runs a two-operand routine, returning machine and stats.
#[must_use]
pub fn run2(p: &Program, a: u32, b: u32) -> (pa_sim::Machine, RunResult) {
    run_fn(p, &[(Reg::R26, a), (Reg::R25, b)], &ExecConfig::default())
}

/// Runs a two-operand routine with cycle-attribution stats enabled,
/// merging the run's [`SimStats`] into `agg`; returns the cycle count.
#[must_use]
pub fn cycles2_stats(p: &Program, a: u32, b: u32, agg: &mut SimStats) -> u64 {
    let (_, result) = run_fn(
        p,
        &[(Reg::R26, a), (Reg::R25, b)],
        &ExecConfig::default().with_stats(),
    );
    assert!(
        result.termination.is_completed(),
        "{a}, {b}: {:?}",
        result.termination
    );
    agg.merge(result.stats.as_deref().expect("stats enabled"));
    result.cycles
}

/// Prints a merged [`SimStats`] as the tables reports do: opcode histogram
/// first, then per-label cycle attribution.
pub fn print_stats(stats: &SimStats) {
    print!("per-opcode (executed):");
    for (op, n) in stats.per_opcode() {
        print!(" {op}:{n}");
    }
    println!();
    println!(
        "{:<20} {:>8} {:>9} {:>10}",
        "region", "cycles", "executed", "nullified"
    );
    for r in &stats.regions {
        println!(
            "{:<20} {:>8} {:>9} {:>10}",
            r.label, r.cycles, r.executed, r.nullified
        );
    }
}

/// A two-operand routine pre-decoded once and replayed on one reused
/// machine — the hot path for table loops that run the same program over
/// thousands of operand pairs.
#[derive(Debug)]
pub struct PreparedBench {
    prepared: PreparedProgram,
    machine: Machine,
}

impl PreparedBench {
    /// Pre-decodes `p` under the default execution config (the same config
    /// [`cycles2`] runs with, so cycle counts are identical).
    #[must_use]
    pub fn new(p: &Program) -> PreparedBench {
        PreparedBench {
            prepared: PreparedProgram::new(p, ExecConfig::default()),
            machine: Machine::new(),
        }
    }

    /// Runs with `R26 = a`, `R25 = b`, returning `(R28, cycles)` and
    /// asserting completion.
    pub fn run(&mut self, a: u32, b: u32) -> (u32, u64) {
        self.machine.reset();
        self.machine.set_reg(Reg::R26, a);
        self.machine.set_reg(Reg::R25, b);
        let r = self.prepared.run(&mut self.machine);
        assert!(
            r.termination.is_completed(),
            "{a}, {b}: {:?}",
            r.termination
        );
        (self.machine.reg(Reg::R28), r.cycles)
    }

    /// The cycle count alone.
    pub fn cycles(&mut self, a: u32, b: u32) -> u64 {
        self.run(a, b).1
    }
}

/// Best/average/worst cycles of `p` over multiplier values in
/// `lo..=hi` (multiplicand fixed), sampling `samples` points. The program
/// is pre-decoded once and replayed on one machine.
#[must_use]
pub fn cycle_band(p: &Program, lo: u32, hi: u32, multiplicand: u32, samples: u32) -> Band {
    let mut bench = PreparedBench::new(p);
    let mut best = u64::MAX;
    let mut worst = 0u64;
    let mut total = 0u64;
    let mut count = 0u64;
    let step = ((hi - lo) / samples).max(1);
    let mut x = lo;
    loop {
        let c = bench.cycles(x, multiplicand);
        best = best.min(c);
        worst = worst.max(c);
        total += c;
        count += 1;
        match x.checked_add(step) {
            Some(next) if next <= hi => x = next,
            _ => break,
        }
    }
    Band {
        best,
        average: total as f64 / count as f64,
        worst,
    }
}

/// A best/average/worst cycle triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Band {
    /// Minimum observed cycles.
    pub best: u64,
    /// Mean observed cycles.
    pub average: f64,
    /// Maximum observed cycles.
    pub worst: u64,
}

impl core::fmt::Display for Band {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{:>4} {:>6.1} {:>5}",
            self.best, self.average, self.worst
        )
    }
}

/// Prints a section header in the table reports.
pub fn section(id: &str, title: &str) {
    println!();
    println!("================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;
    use millicode::mulvar;

    #[test]
    fn prepared_bench_matches_cycles2() {
        let p = mulvar::switched(true).unwrap();
        let mut bench = PreparedBench::new(&p);
        for (a, b) in [(0u32, 0u32), (1, 60_000), (46340, 46340), (12345, 678)] {
            let (value, cycles) = bench.run(a, b);
            let (machine, stats) = run2(&p, a, b);
            assert_eq!(value, machine.reg(Reg::R28), "{a} * {b}");
            assert_eq!(cycles, stats.cycles, "{a} * {b}");
            assert_eq!(cycles, cycles2(&p, a, b), "{a} * {b}");
        }
    }
}
