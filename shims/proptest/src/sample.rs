//! `prop::sample` — choosing from explicit value lists.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.items.len() as u64) as usize;
        self.items[idx].clone()
    }
}

/// Picks uniformly from a non-empty `Vec`.
#[must_use]
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select from an empty list");
    Select { items }
}
