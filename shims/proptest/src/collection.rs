//! `prop::collection` — container strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        (0..self.len).map(|_| self.element.sample(rng)).collect()
    }
}

/// A `Vec` of exactly `len` elements drawn from `element` (matching
/// upstream's `From<usize> for SizeRange`: a single exact size).
#[must_use]
pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
    VecStrategy { element, len }
}
