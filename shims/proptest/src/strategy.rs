//! The [`Strategy`] trait and combinators.

use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// is just a sampler.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> BoxedStrategy<V> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds from at least one option.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

/// Uniform in `[lo, hi]` (inclusive); spans up to 2^64 fit in i128.
fn sample_inclusive(rng: &mut TestRng, lo: i128, hi: i128) -> i128 {
    let span = (hi - lo + 1) as u128;
    lo + (u128::from(rng.next_u64()) % span) as i128
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                sample_inclusive(rng, self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                sample_inclusive(rng, lo, hi) as $t
            }
        }
        impl Strategy for core::ops::RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                sample_inclusive(rng, self.start as i128, <$t>::MAX as i128) as $t
            }
        }
    )*};
}
int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
