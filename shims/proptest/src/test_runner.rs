//! Case-count configuration and the deterministic test RNG.

/// Mirror of `proptest::test_runner::ProptestConfig` (the `cases` knob only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic splitmix64 generator seeded from the test's name, so every
/// run of a given test explores the same cases (reproducible failures).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (the runner passes the test path).
    #[must_use]
    pub fn deterministic(name: &str) -> TestRng {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}
