//! # proptest (offline shim)
//!
//! A drop-in stand-in for the subset of `proptest` 1.x this workspace
//! uses, so property tests run without network access. Differences from
//! upstream, deliberately accepted:
//!
//! * cases are drawn from a deterministic per-test seed (derived from the
//!   test's module path and name), so failures reproduce exactly but the
//!   case sets differ from upstream's;
//! * there is **no shrinking** — a failing case panics with its inputs via
//!   the assertion message instead of a minimised counterexample;
//! * `proptest-regressions` files are ignored.
//!
//! Supported surface: [`prelude`] (`Strategy`, `Just`, `any`,
//! `ProptestConfig`, `prop::sample::select`, `prop::collection::vec`) and
//! the `proptest!`, `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`,
//! `prop_assume!`, `prop_oneof!` macros.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` namespace (`prop::sample::select`, `prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// The deterministic case runner behind [`proptest!`].
pub mod test_runner_support {
    pub use crate::test_runner::{ProptestConfig, TestRng};
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ..)` — plain `assert!`
/// here (no shrinking to benefit from returning an error).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `prop_assert_eq!(a, b)` — plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `prop_assert_ne!(a, b)` — plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// `prop_assume!(cond)` — silently skips the current case when false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// `prop_oneof![s1, s2, ...]` — picks one of the strategies uniformly.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The `proptest! { ... }` test-definition macro.
///
/// Supports the forms used in this workspace: an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn name(arg in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $(
        $(#[$attr:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for _ in 0..config.cases {
                    // One closure per case so `prop_assume!` can skip via
                    // `return` without ending the whole test.
                    let case = |rng: &mut $crate::test_runner::TestRng| {
                        $(let $arg = $crate::strategy::Strategy::sample(&($strategy), rng);)+
                        $body
                    };
                    case(&mut rng);
                }
            }
        )*
    };
}
