//! # criterion (offline shim)
//!
//! A drop-in stand-in for the subset of `criterion` 0.5 this workspace's
//! benches use (`criterion_group!`/`criterion_main!`, `benchmark_group`,
//! `bench_function`, `sample_size`, `black_box`). It runs each closure a
//! bounded number of times and prints a rough mean — enough to keep
//! `cargo bench` runnable and the bench targets compiling offline; it does
//! **no** statistical analysis.

#![forbid(unsafe_code)]

use std::time::Instant;

pub use std::hint::black_box;

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 100,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name.as_ref(), 100, f);
        self
    }
}

/// A named group of benchmarks (see [`Criterion::benchmark_group`]).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name.as_ref(), self.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        iters: samples.clamp(10, 100) as u64,
        elapsed_ns: 0,
        timed: 0,
    };
    f(&mut bencher);
    match bencher.elapsed_ns.checked_div(bencher.timed) {
        Some(mean) => println!("  {name}: ~{mean} ns/iter ({} iters)", bencher.timed),
        None => println!("  {name}: no measurement"),
    }
}

/// Passed to benchmark closures; call [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed_ns: u64,
    timed: u64,
}

impl Bencher {
    /// Times `routine` over a bounded number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        let ns = start.elapsed().as_nanos() as u64;
        self.elapsed_ns += ns;
        self.timed += self.iters;
    }
}

/// Declares a group runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
