//! # rand (offline shim)
//!
//! A drop-in stand-in for the subset of `rand` 0.8 this workspace uses,
//! so the build needs no network access. It provides:
//!
//! * [`rngs::StdRng`] with [`SeedableRng::seed_from_u64`] — a splitmix64
//!   generator (deterministic, seedable, statistically fine for workload
//!   synthesis; **not** the real `StdRng` stream and not cryptographic);
//! * [`Rng::gen`], [`Rng::gen_range`] (half-open and inclusive integer
//!   ranges), [`Rng::gen_bool`];
//! * [`distributions::Distribution`] for user-defined distributions.
//!
//! Sequences differ from upstream `rand`; everything in this repository
//! that depends on reproducibility seeds its own generator, so only
//! in-repo determinism matters.

#![forbid(unsafe_code)]

/// Integer-range sampling support for [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Types that [`Rng::gen`] can produce.
pub trait Fill: Sized {
    /// Draws one uniformly distributed value.
    fn fill_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// The user-facing random-number interface.
pub trait Rng {
    /// The raw 64-bit generator output.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of `T`.
    fn gen<T: Fill>(&mut self) -> T {
        T::fill_from(self)
    }

    /// A value uniformly distributed over `range` (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits, exactly the upstream technique.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Seeding support.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    /// The workspace's standard generator: splitmix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng { state }
        }
    }

    impl crate::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Distribution traits ([`Distribution`](distributions::Distribution)).
pub mod distributions {
    /// A distribution producing values of `T` from any generator.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

macro_rules! impl_fill_int {
    ($($t:ty),*) => {$(
        impl Fill for $t {
            fn fill_from<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_fill_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Fill for bool {
    fn fill_from<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                sample_i128(rng, self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "gen_range: empty range");
                sample_i128(rng, lo, hi) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform in `[lo, hi]` (inclusive); spans up to 2^64 fit.
fn sample_i128<R: Rng + ?Sized>(rng: &mut R, lo: i128, hi: i128) -> i128 {
    let span = (hi - lo + 1) as u128;
    debug_assert!(span <= 1 << 64);
    if span == 0 {
        // Full 64-bit span (e.g. 0u64..=u64::MAX after the +1 wrapped 2^64
        // into 0 is impossible with i128 math; keep the guard anyway).
        return lo + rng.next_u64() as i128;
    }
    lo + (u128::from(rng.next_u64()) % span) as i128
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let x: u64 = rng.gen_range(0u64..=u64::MAX);
            let _ = x;
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
